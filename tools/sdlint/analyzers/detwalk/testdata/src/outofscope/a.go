// Package outofscope is not result-producing: map iteration and clocks
// are fine here, so detwalk must stay silent.
package outofscope

import "time"

func SumCounts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func Stamp() int64 { return time.Now().UnixNano() }

// Package goflow checks that every goroutine spawned in the serving
// layers has a declared lifecycle: tied to a sync.WaitGroup so shutdown
// can drain it, or explicitly marked detached with a reason. An
// untracked goroutine outlives graceful shutdown silently — its table
// passes keep running after Serve returns, its persistSession calls race
// the backend teardown, and the leak is invisible until a test or an
// operator counts goroutines.
//
// A go statement is tracked when both halves of the WaitGroup protocol
// are present:
//
//   - an Add call on a sync.WaitGroup precedes the spawn in the same
//     function (Add must happen-before the go statement, or a concurrent
//     Wait can return while the goroutine runs), and
//   - the spawned function calls Done on a sync.WaitGroup — directly in
//     the goroutine's closure body, or anywhere in the named function or
//     method being spawned. Done-calling functions are recorded as a
//     DoneFact, so a helper in another package (or another file) counts.
//
// The check is deliberately presence-level: it does not prove the Add
// and the Done hit the same WaitGroup, only that the spawn participates
// in the protocol at all — the failure mode being guarded is the
// goroutine nobody thought about draining, not a miswired pair.
//
// Goroutines that are detached by design carry a statement directive:
//
//	go func() { ... }() //sdlint:detached <reason>
//
// (or the directive on the line above, or in the enclosing function's
// doc comment). A bare //sdlint:detached does not excuse the spawn: the
// missing reason is reported as its own diagnostic, and the untracked
// goroutine still fires — same contract as //sdlint:allow.
package goflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"smartdrill/tools/sdlint/analysis"
	"smartdrill/tools/sdlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "goflow",
	Doc: "flag go statements in the serving layers not tied to a WaitGroup drain\n\n" +
		"Shutdown drains background work through WaitGroups; a goroutine outside that\n" +
		"protocol outlives Serve silently. Deliberately detached spawns carry\n" +
		"//sdlint:detached <reason>.",
	Run:       run,
	FactTypes: []analysis.Fact{new(DoneFact)},
}

// DoneFact marks a function that calls Done on a sync.WaitGroup:
// spawning it with `go` closes the tracked-goroutine protocol, provided
// an Add precedes the spawn.
type DoneFact struct{}

func (*DoneFact) AFact() {}

var scope = []string{"internal/server", "internal/search", "internal/drill"}

func run(pass *analysis.Pass) (interface{}, error) {
	// Collection phase, every package: export which functions call
	// WaitGroup.Done, so cross-package spawn targets resolve.
	local := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !callsWaitGroupMethod(pass.TypesInfo, fd.Body, "Done") {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				local[fn] = true
				pass.ExportObjectFact(fn, &DoneFact{})
			}
		}
	}

	// Check phase, the layers shutdown is responsible for draining.
	if !lintutil.PathIn(pass.Pkg.Path(), scope...) {
		return nil, nil
	}
	callsDone := func(fn *types.Func) bool {
		if local[fn] {
			return true
		}
		return pass.ImportObjectFact(fn, &DoneFact{})
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		detached := analysis.CollectLineDirectives(pass.Fset, file, "detached")
		bareReported := make(map[token.Pos]bool)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, detached, bareReported, callsDone)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, detached []analysis.LineDirective, bareReported map[token.Pos]bool, callsDone func(*types.Func) bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		// Spawned side of the protocol: Done in the closure body, or a
		// DoneFact on the named spawn target.
		done := false
		if lit, isLit := g.Call.Fun.(*ast.FuncLit); isLit {
			done = callsWaitGroupMethod(pass.TypesInfo, lit.Body, "Done")
		} else if fn := lintutil.Callee(pass.TypesInfo, g.Call); fn != nil {
			done = callsDone(fn)
		}
		// Spawning side: an Add that happens-before the go statement.
		addBefore := addPrecedes(pass.TypesInfo, fd.Body, g.Pos())
		if done && addBefore {
			return true
		}

		line := pass.Fset.Position(g.Pos()).Line
		for _, d := range detached {
			if !d.Covers(line) {
				continue
			}
			if d.Args != "" {
				return true // detached by declared design
			}
			if !bareReported[d.Pos] {
				bareReported[d.Pos] = true
				pass.Reportf(d.Pos, "sdlint:detached ignored: missing reason (write //sdlint:detached <reason>)")
			}
		}
		if done {
			pass.Reportf(g.Pos(), "goroutine calls WaitGroup.Done but no Add precedes the spawn: Add must happen-before the go statement, or a concurrent Wait can return while this goroutine still runs")
		} else {
			pass.Reportf(g.Pos(), "untracked goroutine: tie it to a WaitGroup (Add before the spawn, Done in the spawned function) so shutdown can drain it, or mark it //sdlint:detached <reason>")
		}
		return true
	})
}

// addPrecedes reports whether a sync.WaitGroup Add call appears in body
// at a position before pos.
func addPrecedes(info *types.Info, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if n.Pos() >= pos {
			// Everything under this node starts at or after the spawn.
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(info, call, "Add") {
			found = true
		}
		return !found
	})
	return found
}

// callsWaitGroupMethod reports whether node contains a call to the named
// method on a sync.WaitGroup value.
func callsWaitGroupMethod(info *types.Info, node ast.Node, method string) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(info, call, method) {
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroupCall reports whether call is wg.<method>() on a
// sync.WaitGroup receiver.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

package goflow_test

import (
	"testing"

	"smartdrill/tools/sdlint/analysis/analysistest"
	"smartdrill/tools/sdlint/analyzers/goflow"
)

func TestGoflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), goflow.Analyzer, "internal/server")
}

// Package server exercises goroutine-lifecycle tracking: WaitGroup-tied
// spawns (closure Done, local helper, cross-package fact-imported
// helper), untracked spawns, each half of the protocol missing, and the
// detached escape hatch with and without its mandatory reason.
package server

import (
	"sync"

	"jobs"
)

type Server struct {
	workers sync.WaitGroup
}

// worker signals s.workers when it finishes.
func (s *Server) worker() { defer s.workers.Done() }

// noSignal does work with no lifecycle signal.
func (s *Server) noSignal() {}

func (s *Server) trackedClosure() {
	s.workers.Add(1)
	go func() {
		defer s.workers.Done()
	}()
}

func (s *Server) trackedHelper() {
	s.workers.Add(1)
	go s.worker()
}

func (s *Server) trackedCrossPackage(wg *sync.WaitGroup) {
	wg.Add(1)
	go jobs.Run(wg, func() {})
}

func (s *Server) untrackedHelper() {
	go s.noSignal() // want "untracked goroutine"
}

func (s *Server) untrackedClosure(c chan int) {
	go func() { c <- 1 }() // want "untracked goroutine"
}

func (s *Server) untrackedCrossPackage() {
	go jobs.Fire(func() {}) // want "untracked goroutine"
}

func (s *Server) doneWithoutAdd() {
	go func() { // want "no Add precedes the spawn"
		defer s.workers.Done()
	}()
}

func (s *Server) addWithoutDone() {
	s.workers.Add(1)
	go s.noSignal() // want "untracked goroutine"
}

func (s *Server) detachedReasoned(errc chan error) {
	go func() { errc <- nil }() //sdlint:detached listener goroutine, consumed by the caller's select for the server's whole life
}

func (s *Server) detachedStandalone(done chan struct{}) {
	//sdlint:detached drain waiter, exits when the WaitGroup drains
	go func() {
		s.workers.Wait()
		close(done)
	}()
}

func (s *Server) detachedBare(c chan int) {
	go func() { c <- 1 }() /* want "missing reason" "untracked goroutine" */ //sdlint:detached
}

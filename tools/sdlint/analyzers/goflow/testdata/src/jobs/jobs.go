// Package jobs holds a cross-package spawn target: Run calls Done on
// the caller's WaitGroup, which reaches importers as a DoneFact.
package jobs

import "sync"

// Run executes fn and signals wg when it finishes.
func Run(wg *sync.WaitGroup, fn func()) {
	defer wg.Done()
	fn()
}

// Fire executes fn with no lifecycle signal.
func Fire(fn func()) { fn() }

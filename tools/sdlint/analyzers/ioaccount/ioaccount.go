// Package ioaccount checks that the engine's I/O counters stay honest.
//
// The paper's cost model — and the repo's bench-check gates — rely on
// the scan/postings/bitmap counters (Stats.RowsScanned,
// Stats.PostingsRead, Stats.BitmapWordsRead in the search layer; the
// Store's rowsRead/indexRowsRead/... mirrors in the storage layer)
// being exact. Every site that touches a posting list, bitset words, or
// scans rows must therefore either be an accounted helper (it books the
// matching counter itself, directly or through an accounted callee) or
// leave a matching increment in the calling function.
//
// Raw I/O surfaces are declared with a doc-comment directive:
//
//	//sdlint:io rows|postings|bitmap
//
// and the analyzer exports two facts per function for downstream
// packages: RawFact (this callee performs I/O of these classes) and
// AccountedFact (that I/O is booked by the callee itself). A
// cross-package caller of a raw callee is flagged unless the callee is
// self-accounted or the caller books the class — which is how
// storage.Store.FilterRows stays callable from internal/drill without
// drill-side accounting, and how deleting the Store's booking line
// lights up every dependent package. The rawOps table below seeds the
// same classification by name for the metering kernels, so goldens and
// scratch modules work without annotations.
//
// ioaccount flags, in internal/brs, internal/table, internal/drill,
// internal/search and internal/storage, any function that invokes a raw
// I/O operation without a matching counter increment in its body. Sites
// whose accounting genuinely happens elsewhere (e.g. gatherers that
// only collect list headers for a kernel to consume) carry
// //sdlint:allow ioaccount <reason>.
package ioaccount

import (
	"go/ast"
	"go/types"
	"sort"

	"smartdrill/tools/sdlint/analysis"
	"smartdrill/tools/sdlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ioaccount",
	Doc: "flag posting-list/bitmap/row-scan access without a matching Stats increment\n\n" +
		"RowsScanned, PostingsRead and BitmapWordsRead back the cost model and the\n" +
		"bench gates; raw I/O outside accounted helpers silently skews them. Suppress\n" +
		"caller-accounted sites with //sdlint:allow ioaccount <reason>.",
	Run:       run,
	FactTypes: []analysis.Fact{new(RawFact), new(AccountedFact)},
}

// RawFact marks a function as a raw I/O surface: calling it performs
// I/O of the listed classes, which someone must account.
type RawFact struct{ Classes []string }

func (*RawFact) AFact() {}

// AccountedFact marks a function as booking the listed classes itself
// (in its own body, or through a self-accounted raw callee), so callers
// owe nothing for them.
type AccountedFact struct{ Classes []string }

func (*AccountedFact) AFact() {}

var scope = []string{"internal/brs", "internal/table", "internal/drill", "internal/search", "internal/storage"}

// class partitions raw operations by the counter family that must book
// them.
type class int

const (
	rowscan class = iota
	postings
	bitmap
	numClasses
)

// String names the class in diagnostics.
func (c class) String() string {
	return [...]string{"rows", "posting entries", "bitmap words"}[c]
}

// name is the class's short spelling in //sdlint:io directives and
// serialized facts.
func (c class) name() string {
	return [...]string{"rows", "postings", "bitmap"}[c]
}

var classByName = map[string]class{"rows": rowscan, "postings": postings, "bitmap": bitmap}

// classSet is a small bitset over the three classes.
type classSet uint8

func (s classSet) has(c class) bool              { return s&(1<<c) != 0 }
func (s *classSet) add(c class)                  { *s |= 1 << c }
func (s *classSet) union(o classSet)             { *s |= o }
func (s classSet) empty() bool                   { return s == 0 }
func (s classSet) minus(o classSet) classSet     { return s &^ o }
func (s classSet) intersect(o classSet) classSet { return s & o }

func (s classSet) names() []string {
	var out []string
	for c := class(0); c < numClasses; c++ {
		if s.has(c) {
			out = append(out, c.name())
		}
	}
	return out
}

func setOfNames(names []string) classSet {
	var s classSet
	for _, n := range names {
		if c, ok := classByName[n]; ok {
			s.add(c)
		}
	}
	return s
}

// statsFields lists the counter field names that satisfy each class:
// the search layer's exported Stats fields and the storage layer's
// unexported mirrors. SampledRowsScanned/sampledRowsRead cover the
// confidence-bounded sampling paths.
var statsFields = map[class][]string{
	rowscan:  {"RowsScanned", "SampledRowsScanned", "rowsRead", "sampledRowsRead"},
	postings: {"PostingsRead", "indexRowsRead", "searchIndexRead"},
	bitmap:   {"BitmapWordsRead", "searchBitmapRead"},
}

// rawOps maps "pkg.Recv.Func" (package NAME, so analysistest stubs
// qualify) to the I/O class the callee performs. These are the ways the
// engine touches storage below the accounted storage.Store layer; the
// Store's own raw surfaces are declared in-source with //sdlint:io and
// travel as facts.
var rawOps = map[string]class{
	"table.Index.Postings":    postings, // hands out the raw posting list
	"table.Index.Lookup":      postings, // metered kernel: returns postingsRead
	"table.View.EachInAll":    postings, // metered kernel: returns entries read
	"table.Index.Bitmap":      bitmap,   // hands out the raw bitset
	"table..AndCount":         bitmap,   // metered kernel: returns wordsRead
	"table..AndEach":          bitmap,   // metered kernel: returns wordsRead
	"table.View.Refine":       rowscan,  // full scan of the view's rows
	"brs.runner.parallelRows": rowscan,  // chunked row fan-out of a counting pass
}

// exemptCallees perform no data-plane I/O despite living next to it:
// PostingsLen reads catalog metadata (list lengths) for the planner.
var exemptCallees = map[string]bool{
	"table.Index.PostingsLen": true,
}

// funcInfo is the per-function classification the package pass builds
// before checking call sites.
type funcInfo struct {
	decl      *ast.FuncDecl
	raw       classSet // declared raw surface (seed table or //sdlint:io)
	booked    classSet // books a counter field of the class in its body
	accounted classSet // booked, or delegates to a self-accounted raw callee
	callees   []*types.Func
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.PathIn(pass.Pkg.Path(), scope...) {
		return nil, nil
	}

	funcs := classify(pass)

	// Accounted-ness propagates through local delegation to a fixpoint:
	// CountExact performs its rows I/O entirely through Scan, which
	// books it, so CountExact is accounted too.
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			for _, callee := range fi.callees {
				raw, acc := calleeClasses(pass, funcs, callee)
				gain := raw.intersect(acc).minus(fi.accounted)
				if !gain.empty() {
					fi.accounted.union(gain)
					changed = true
				}
			}
		}
	}

	// Export facts in deterministic order for reproducible .vetx files.
	var order []*types.Func
	for fn := range funcs {
		order = append(order, fn)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Pos() < order[j].Pos() })
	for _, fn := range order {
		fi := funcs[fn]
		if !fi.raw.empty() {
			pass.ExportObjectFact(fn, &RawFact{Classes: fi.raw.names()})
		}
		if !fi.accounted.empty() {
			pass.ExportObjectFact(fn, &AccountedFact{Classes: fi.accounted.names()})
		}
	}

	for _, fn := range order {
		checkFunc(pass, funcs, funcs[fn])
	}
	return nil, nil
}

// classify builds the per-function tables for this package's non-test
// declarations: declared rawness, locally booked classes, and the
// callee list the fixpoint and the checker walk.
func classify(pass *analysis.Pass) map[*types.Func]*funcInfo {
	funcs := make(map[*types.Func]*funcInfo)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{decl: fd}
			if cls, isRaw := rawOps[opKey(fn)]; isRaw {
				fi.raw.add(cls)
			}
			for _, arg := range analysis.FuncDirectives(fd, "io") {
				name, _, _ := cutWord(arg)
				cls, ok := classByName[name]
				if !ok {
					pass.Reportf(fd.Pos(), "//sdlint:io %q is not an I/O class (want rows, postings or bitmap)", name)
					continue
				}
				fi.raw.add(cls)
			}
			fi.booked = bookedClasses(fd)
			fi.accounted = fi.booked
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := lintutil.Callee(pass.TypesInfo, call); callee != nil {
					fi.callees = append(fi.callees, callee)
				}
				return true
			})
			funcs[fn] = fi
		}
	}
	return funcs
}

// calleeClasses resolves a callee's raw and accounted class sets: from
// the local tables when it is declared in this package, from imported
// facts otherwise, with the name-keyed seed table applying everywhere.
func calleeClasses(pass *analysis.Pass, funcs map[*types.Func]*funcInfo, callee *types.Func) (raw, acc classSet) {
	if cls, isRaw := rawOps[opKey(callee)]; isRaw {
		raw.add(cls)
	}
	if fi, isLocal := funcs[callee]; isLocal {
		raw.union(fi.raw)
		acc.union(fi.accounted)
		return raw, acc
	}
	var rf RawFact
	if pass.ImportObjectFact(callee, &rf) {
		raw.union(setOfNames(rf.Classes))
	}
	var af AccountedFact
	if pass.ImportObjectFact(callee, &af) {
		acc.union(setOfNames(af.Classes))
	}
	return raw, acc
}

func checkFunc(pass *analysis.Pass, funcs map[*types.Func]*funcInfo, fi *funcInfo) {
	// The metering layer itself is exempt: a raw op's own body (and the
	// metadata helpers) measure rather than consume.
	if own, ok := pass.TypesInfo.Defs[fi.decl.Name].(*types.Func); ok {
		if !fi.raw.empty() || exemptCallees[opKey(own)] {
			return
		}
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		key := opKey(fn)
		if exemptCallees[key] {
			return true
		}
		raw, acc := calleeClasses(pass, funcs, fn)
		needs := raw.minus(acc)
		if needs.empty() {
			return true
		}
		for c := class(0); c < numClasses; c++ {
			if !needs.has(c) || fi.booked.has(c) {
				continue
			}
			pass.Reportf(call.Pos(), "%s reads %s but this function never adds to Stats.%s: account the read here or move it into an accounted helper",
				key, c, statsFields[c][0])
		}
		return true
	})
}

// opKey renders fn as "pkg.Recv.Name" with an empty Recv for plain
// functions, matching the rawOps table.
func opKey(fn *types.Func) string {
	return lintutil.PkgName(fn) + "." + lintutil.RecvTypeName(fn) + "." + fn.Name()
}

// bookedClasses collects the classes whose counter fields this function
// assigns to (x.Stats.Field += n, stats.Field++, s.rowsRead += n, ...),
// anywhere in its body including closures: counting passes fan work out
// to workers and book the merged totals afterwards.
func bookedClasses(fd *ast.FuncDecl) classSet {
	fieldClass := make(map[string]class)
	for c, names := range statsFields {
		for _, f := range names {
			fieldClass[f] = c
		}
	}
	var booked classSet
	note := func(e ast.Expr) {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			if c, ok := fieldClass[sel.Sel.Name]; ok {
				booked.add(c)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(n.X)
		}
		return true
	})
	return booked
}

// cutWord splits s at its first space.
func cutWord(s string) (first, rest string, ok bool) {
	for i, r := range s {
		if r == ' ' || r == '\t' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

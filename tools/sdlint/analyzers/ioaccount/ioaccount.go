// Package ioaccount checks that the engine's I/O counters stay honest.
//
// The paper's cost model — and the repo's bench-check gates — rely on
// Stats.RowsScanned, Stats.PostingsRead and Stats.BitmapWordsRead being
// exact. Every site that touches a posting list, bitset words, or scans
// rows must therefore either be an accounted helper (a metering kernel
// that returns the amount read for the caller to book) or book the
// matching Stats field in the same function.
//
// ioaccount flags, in internal/brs, internal/table, internal/drill and
// internal/search, any function that invokes a raw I/O operation without a matching
// Stats increment in its body. Sites whose accounting genuinely happens
// elsewhere (e.g. gatherers that only collect list headers for a kernel
// to consume) carry //sdlint:allow ioaccount <reason>.
package ioaccount

import (
	"go/ast"
	"go/types"

	"smartdrill/tools/sdlint/analysis"
	"smartdrill/tools/sdlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ioaccount",
	Doc: "flag posting-list/bitmap/row-scan access without a matching Stats increment\n\n" +
		"RowsScanned, PostingsRead and BitmapWordsRead back the cost model and the\n" +
		"bench gates; raw I/O outside accounted helpers silently skews them. Suppress\n" +
		"caller-accounted sites with //sdlint:allow ioaccount <reason>.",
	Run: run,
}

var scope = []string{"internal/brs", "internal/table", "internal/drill", "internal/search"}

// class partitions raw operations by the Stats field that must book them.
type class int

const (
	rowscan class = iota
	postings
	bitmap
)

func (c class) String() string {
	return [...]string{"rows", "posting entries", "bitmap words"}[c]
}

// statsFields lists the Stats field names that satisfy each class.
// SampledRowsScanned covers the confidence-bounded sampling paths.
var statsFields = map[class][]string{
	rowscan:  {"RowsScanned", "SampledRowsScanned"},
	postings: {"PostingsRead"},
	bitmap:   {"BitmapWordsRead"},
}

// rawOps maps "pkg.Recv.Func" (package NAME, so analysistest stubs
// qualify) to the I/O class the callee performs. These are the only ways
// the engine touches storage below the accounted storage.Store layer.
var rawOps = map[string]class{
	"table.Index.Postings":    postings, // hands out the raw posting list
	"table.Index.Lookup":      postings, // metered kernel: returns postingsRead
	"table.View.EachInAll":    postings, // metered kernel: returns entries read
	"table.Index.Bitmap":      bitmap,   // hands out the raw bitset
	"table..AndCount":         bitmap,   // metered kernel: returns wordsRead
	"table..AndEach":          bitmap,   // metered kernel: returns wordsRead
	"table.View.Refine":       rowscan,  // full scan of the view's rows
	"brs.runner.parallelRows": rowscan,  // chunked row fan-out of a counting pass
}

// exemptCallees perform no data-plane I/O despite living next to it:
// PostingsLen reads catalog metadata (list lengths) for the planner.
var exemptCallees = map[string]bool{
	"table.Index.PostingsLen": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.PathIn(pass.Pkg.Path(), scope...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// The metering layer itself is exempt: a raw op's own body (and the
	// metadata helpers) measure rather than consume.
	if own, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		key := opKey(own)
		if _, isRaw := rawOps[key]; isRaw || exemptCallees[key] {
			return
		}
	}
	booked := bookedFields(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		key := opKey(fn)
		cls, isRaw := rawOps[key]
		if !isRaw || exemptCallees[key] {
			return true
		}
		for _, f := range statsFields[cls] {
			if booked[f] {
				return true
			}
		}
		pass.Reportf(call.Pos(), "%s reads %s but this function never adds to Stats.%s: account the read here or move it into an accounted helper",
			key, cls, statsFields[cls][0])
		return true
	})
}

// opKey renders fn as "pkg.Recv.Name" with an empty Recv for plain
// functions, matching the rawOps table.
func opKey(fn *types.Func) string {
	return lintutil.PkgName(fn) + "." + lintutil.RecvTypeName(fn) + "." + fn.Name()
}

// bookedFields collects the Stats-style field names this function
// assigns to (x.Stats.Field += n, stats.Field++, ...), anywhere in its
// body including closures: counting passes fan work out to workers and
// book the merged totals afterwards.
func bookedFields(fd *ast.FuncDecl) map[string]bool {
	booked := make(map[string]bool)
	note := func(e ast.Expr) {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			booked[sel.Sel.Name] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(n.X)
		}
		return true
	})
	return booked
}

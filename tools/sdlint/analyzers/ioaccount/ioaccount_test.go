package ioaccount_test

import (
	"testing"

	"smartdrill/tools/sdlint/analysis/analysistest"
	"smartdrill/tools/sdlint/analyzers/ioaccount"
)

func TestIoaccount(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ioaccount.Analyzer, "internal/brs", "internal/storage", "internal/drill")
}

package brs

import "table"

type Stats struct {
	RowsScanned     int64
	PostingsRead    int64
	BitmapWordsRead int64
}

type runner struct {
	ix    *table.Index
	v     *table.View
	stats Stats
}

func (rn *runner) parallelRows(n int, fn func(lo, hi, g int)) { fn(0, n, 0) }

func (rn *runner) countScanAccounted(rows []int) {
	rn.parallelRows(len(rows), func(lo, hi, g int) {})
	rn.stats.RowsScanned += int64(len(rows))
}

// countScanUnaccounted is the acceptance scenario: a counting pass whose
// Stats increment was (deliberately) removed.
func (rn *runner) countScanUnaccounted(rows []int) {
	rn.parallelRows(len(rows), func(lo, hi, g int) {}) // want "brs.runner.parallelRows reads rows but this function never adds to Stats.RowsScanned"
}

func (rn *runner) gatherAccounted(lists [][]int32) {
	read := rn.v.EachInAll(lists, func(pos, row int) {})
	rn.stats.PostingsRead += read
}

func (rn *runner) gatherUnaccounted(lists [][]int32) int64 {
	return rn.v.EachInAll(lists, func(pos, row int) {}) // want "table.View.EachInAll reads posting entries"
}

func (rn *runner) bitmapAccounted(sets []*table.Bitset) int {
	cnt, words := table.AndCount(sets)
	rn.stats.BitmapWordsRead += words
	return cnt
}

func (rn *runner) bitmapUnaccounted(sets []*table.Bitset) int {
	cnt, _ := table.AndCount(sets) // want "AndCount reads bitmap words"
	return cnt
}

// candLists gathers list headers only; the kernels that consume them
// meter the entries actually read.
//
//sdlint:allow ioaccount hands list headers to the intersection kernels, which meter and book the entries read
func (rn *runner) candLists(col, val int) [][]int32 {
	return [][]int32{rn.ix.Postings(col, val)}
}

func (rn *runner) planLen(col, val int) int {
	return rn.ix.PostingsLen(col, val) // catalog metadata: exempt
}

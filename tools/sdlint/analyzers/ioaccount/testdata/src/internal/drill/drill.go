// Package drill exercises cross-package fact import: the storage
// sibling's //sdlint:io surfaces arrive here as RawFact/AccountedFact,
// so self-accounted helpers cost callers nothing while unaccounted raw
// surfaces demand a local booking.
package drill

import "internal/storage"

type Stats struct{ RowsScanned int64 }

type Session struct {
	store *storage.Store
	stats Stats
}

// viaAccountedHelper leans on the imported AccountedFact: Scan and
// CountExact book their own I/O, so no booking is owed here.
func (s *Session) viaAccountedHelper() int {
	s.store.Scan(func(i int) bool { return true })
	return s.store.CountExact()
}

func (s *Session) rawBooked() {
	rows := s.store.RawRows()
	s.stats.RowsScanned += int64(len(rows))
}

func (s *Session) rawUnbooked() int {
	return len(s.store.RawRows()) // want "storage.Store.RawRows reads rows but this function never adds to Stats.RowsScanned"
}

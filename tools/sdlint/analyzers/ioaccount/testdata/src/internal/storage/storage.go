// Package storage mirrors the real accounted Store surface: raw I/O
// methods declared with //sdlint:io whose accounted status travels to
// importing packages as facts.
package storage

type Store struct {
	rowsRead      int64
	indexRowsRead int64
}

// Scan is the accounted full pass.
//
//sdlint:io rows (self-accounted: books rowsRead below)
func (s *Store) Scan(fn func(i int) bool) {
	read := int64(0)
	for i := 0; i < 10; i++ {
		read++
		if !fn(i) {
			break
		}
	}
	s.rowsRead += read
}

// CountExact performs its pass entirely through Scan, which books it:
// accounted-ness propagates through the local delegation fixpoint.
//
//sdlint:io rows (accounted through Scan)
func (s *Store) CountExact() int {
	n := 0
	s.Scan(func(i int) bool { n++; return true })
	return n
}

// RawRows hands out rows without booking them; callers must account.
//
//sdlint:io rows
func (s *Store) RawRows() []int { return nil }

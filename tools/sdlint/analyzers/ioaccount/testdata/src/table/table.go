// Package table stubs the real internal/table surface: ioaccount matches
// raw operations by package name, receiver and method, so these empty
// bodies stand in for the metering kernels.
package table

type Bitset struct{ words []uint64 }

type Index struct{}

func (ix *Index) Postings(col, val int) []int32 { return nil }
func (ix *Index) PostingsLen(col, val int) int  { return len(ix.Postings(col, val)) }
func (ix *Index) Bitmap(col, val int) *Bitset   { return nil }
func (ix *Index) Lookup(r int) ([]int, int64)   { return nil, 0 }

type View struct{}

func (v *View) EachInAll(lists [][]int32, fn func(pos, row int)) int64 { return 0 }
func (v *View) Refine(base []int) *View                                { return nil }

func AndCount(sets []*Bitset) (int, int64)           { return 0, 0 }
func AndEach(sets []*Bitset, fn func(row int)) int64 { return 0 }

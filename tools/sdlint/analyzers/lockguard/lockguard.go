// Package lockguard checks mutex discipline for annotated struct fields.
//
// A struct field carrying a "guardedby: <mu>" comment may only be
// accessed by functions that demonstrably hold the lock:
//
//	type session struct {
//		mu  sync.Mutex
//		eng *smartdrill.Engine // guardedby: mu
//	}
//
// An access is accepted when the enclosing function (a) calls
// <owner>.<mu>.Lock() or .RLock() itself, (b) declares
// //sdlint:holds <mu> in its doc comment (the caller-holds-the-lock
// contract), or (c) operates on a value it just constructed locally, so
// no other goroutine can see it yet. Composite-literal construction
// (&session{eng: e}) is likewise exempt.
//
// When the named guard is not a field of the owning struct — the
// drill.Session case, whose fields are guarded by the server session's
// lock — rule (a) can never apply and every access needs the holds
// annotation, which keeps the external-lock contract written down at
// each use.
//
// The check is package-local (the mini framework has no cross-package
// facts): accesses from other packages are only covered when those
// packages are also analyzed, and exported guarded fields rely on the
// annotation being visible in the owning package's doc. _test.go files
// are exempt.
package lockguard

import (
	"go/ast"
	"go/types"

	"smartdrill/tools/sdlint/analysis"
	"smartdrill/tools/sdlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "flag access to 'guardedby: mu' fields in functions that neither lock mu nor declare //sdlint:holds mu\n\n" +
		"Guarded fields may only be touched under their mutex; functions relying on a\n" +
		"caller's lock declare //sdlint:holds <mu> in their doc comment.",
	Run: run,
}

// guardInfo describes one annotated field.
type guardInfo struct {
	guard        string       // mutex field name from the annotation
	owner        *types.Named // struct type declaring the field
	guardIsField bool         // guard is a field of owner (lockable locally)
}

func run(pass *analysis.Pass) (interface{}, error) {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil, nil
}

// collectGuarded finds every "guardedby:" annotated field declared in
// this package.
func collectGuarded(pass *analysis.Pass) map[types.Object]guardInfo {
	guarded := make(map[types.Object]guardInfo)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				guard, ok := analysis.GuardedBy(f)
				if !ok {
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = guardInfo{guard: guard, owner: named, guardIsField: fieldNames[guard]}
					}
				}
			}
			return true
		})
	}
	return guarded
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[types.Object]guardInfo) {
	locked := lockedGuards(pass.TypesInfo, fd)
	fresh := freshLocals(pass.TypesInfo, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		gi, isGuarded := guarded[obj]
		if !isGuarded {
			return true
		}
		if analysis.Holds(fd, gi.guard) {
			return true
		}
		if locked[lockKey{gi.owner.Obj(), gi.guard}] {
			return true
		}
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && fresh[pass.TypesInfo.Uses[base]] {
			return true
		}
		if gi.guardIsField {
			pass.Reportf(sel.Sel.Pos(), "access to %s.%s outside its lock: call %s.%s.Lock/RLock in this function or declare //sdlint:holds %s",
				gi.owner.Obj().Name(), sel.Sel.Name, gi.owner.Obj().Name(), gi.guard, gi.guard)
		} else {
			pass.Reportf(sel.Sel.Pos(), "access to %s.%s without //sdlint:holds %s: the guard %q lives outside %s, so each accessor must declare it holds the caller's lock",
				gi.owner.Obj().Name(), sel.Sel.Name, gi.guard, gi.guard, gi.owner.Obj().Name())
		}
		return true
	})
}

// lockKey identifies a (struct type, mutex field) pair.
type lockKey struct {
	owner types.Object
	guard string
}

// lockedGuards records every guard the function acquires anywhere in its
// body (x.mu.Lock(), x.mu.RLock()), keyed by the owning struct's type.
// The check is function-granular, matching how the engine structures its
// critical sections: lock, work, unlock within one function.
func lockedGuards(info *types.Info, fd *ast.FuncDecl) map[lockKey]bool {
	locked := make(map[lockKey]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (fun.Sel.Name != "Lock" && fun.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base := info.TypeOf(muSel.X)
		if base == nil {
			return true
		}
		if p, isPtr := base.(*types.Pointer); isPtr {
			base = p.Elem()
		}
		if named, isNamed := base.(*types.Named); isNamed {
			locked[lockKey{named.Obj(), muSel.Sel.Name}] = true
		}
		return true
	})
	return locked
}

// freshLocals collects local variables bound to values constructed in
// this function (x := &T{...}, x := T{...}, x := new(T)): until such a
// value is shared, its fields need no lock.
func freshLocals(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	bind := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || !isConstruction(info, rhs) {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			fresh[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}

// isConstruction reports whether e constructs a new value: &T{...},
// T{...}, or new(T).
func isConstruction(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, isLit := ast.Unparen(e.X).(*ast.CompositeLit)
		return e.Op.String() == "&" && isLit
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

package lockguard_test

import (
	"testing"

	"smartdrill/tools/sdlint/analysis/analysistest"
	"smartdrill/tools/sdlint/analyzers/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockguard.Analyzer, "lockpkg")
}

package lockpkg

import "sync"

type Engine struct{ n int }

// session mirrors the server's per-session shape: the engine pointer may
// only be touched under mu.
type session struct {
	mu  sync.Mutex
	eng *Engine // guardedby: mu
}

func locked(s *session) *Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng
}

func unlocked(s *session) *Engine {
	return s.eng // want "access to session.eng outside its lock"
}

// trusted documents that its callers hold the session lock.
//
//sdlint:holds mu — called only from locked's critical section
func trusted(s *session) *Engine {
	return s.eng
}

func fresh() *Engine {
	s := &session{eng: &Engine{}}
	return s.eng // local construction: not yet shared, no lock needed
}

// registry exercises the read-lock path.
type registry struct {
	mu sync.RWMutex
	m  map[string]int // guardedby: mu
}

func (r *registry) lookup(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func (r *registry) unlockedLen() int {
	return len(r.m) // want "access to registry.m outside its lock"
}

// tree mirrors drill.Session: guarded by a lock that is not one of its
// own fields, so only the holds annotation can satisfy the check.
type tree struct {
	root int // guardedby: mu (the owning session's lock)
}

func readRoot(t *tree) int {
	return t.root // want "access to tree.root without //sdlint:holds mu"
}

//sdlint:holds mu — callers access the tree inside their session critical section
func readRootHeld(t *tree) int {
	return t.root
}

// Package persistguard machine-checks the server's write-through
// persistence contract: any internal/server function that mutates a
// session — by calling a method from the declared mutator set — must
// write the session through to the persistence backend by calling
// persistSession before it responds, or crash recovery replays a stale
// tree.
//
// The mutator set is declared in source with a doc-comment directive:
//
//	//sdlint:mutator
//
// on the mutating method (the Engine's drill/collapse/refine entry
// points in the root package, the server's own putSession). The
// directive travels as a MutatorFact, so the set is maintained next to
// the methods themselves and new mutators are guarded the moment they
// are annotated, wherever they are called from.
//
// The check is a path-insensitive presence check ("calls persistSession
// somewhere in the same function"), which matches how the handlers are
// written: mutate under the session lock, persist after unlocking,
// respond. Functions whose mutations genuinely need no write-through (a
// throwaway warming engine, rehydration of a snapshot just read) carry
// //sdlint:allow persistguard <reason>.
package persistguard

import (
	"go/ast"
	"go/types"

	"smartdrill/tools/sdlint/analysis"
	"smartdrill/tools/sdlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "persistguard",
	Doc: "flag internal/server functions that call a session mutator but never persistSession\n\n" +
		"PR 8's write-through contract: every session mutation is persisted before the\n" +
		"response, so crash recovery never replays a stale tree. Mutators are declared\n" +
		"with //sdlint:mutator; exempt sites carry //sdlint:allow persistguard <reason>.",
	Run:       run,
	FactTypes: []analysis.Fact{new(MutatorFact)},
}

// MutatorFact marks a function as session-mutating: internal/server
// callers owe a persistSession call in the same function.
type MutatorFact struct{}

func (*MutatorFact) AFact() {}

var scope = []string{"internal/server"}

func run(pass *analysis.Pass) (interface{}, error) {
	// Collection phase, every package: export the declared mutator set.
	local := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if len(analysis.FuncDirectives(fd, "mutator")) == 0 {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				local[fn] = true
				pass.ExportObjectFact(fn, &MutatorFact{})
			}
		}
	}

	// Check phase, the serving layer only.
	if !lintutil.PathIn(pass.Pkg.Path(), scope...) {
		return nil, nil
	}
	isMutator := func(fn *types.Func) bool {
		if local[fn] {
			return true
		}
		return pass.ImportObjectFact(fn, &MutatorFact{})
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "persistSession" {
				continue
			}
			checkFunc(pass, fd, isMutator)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, isMutator func(*types.Func) bool) {
	var firstMutator *ast.CallExpr
	var mutatorName string
	persists := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if fn.Name() == "persistSession" {
			persists = true
		}
		if firstMutator == nil && isMutator(fn) {
			firstMutator = call
			mutatorName = lintutil.RecvTypeName(fn) + "." + fn.Name()
		}
		return true
	})
	if firstMutator != nil && !persists {
		pass.Reportf(firstMutator.Pos(), "%s mutates the session (via %s) without calling persistSession: the write-through contract requires every mutation persisted before responding, or crash recovery replays a stale tree",
			fd.Name.Name, mutatorName)
	}
}

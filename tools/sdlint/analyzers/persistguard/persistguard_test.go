package persistguard_test

import (
	"testing"

	"smartdrill/tools/sdlint/analysis/analysistest"
	"smartdrill/tools/sdlint/analyzers/persistguard"
)

func TestPersistguard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), persistguard.Analyzer, "internal/server")
}

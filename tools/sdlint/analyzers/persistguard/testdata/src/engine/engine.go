// Package engine mirrors the root smartdrill Engine surface: mutating
// entry points declared //sdlint:mutator, whose status reaches the
// server package as a MutatorFact.
package engine

type Engine struct{ nodes int }

// DrillDown expands the tree in place.
//
//sdlint:mutator
func (e *Engine) DrillDown() { e.nodes++ }

// RefineNode upgrades provisional counts in place.
//
//sdlint:mutator
func (e *Engine) RefineNode() bool { e.nodes++; return true }

// Stats is read-only: no directive, no fact.
func (e *Engine) Stats() int { return e.nodes }

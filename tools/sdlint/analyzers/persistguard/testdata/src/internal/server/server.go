// Package server exercises the write-through check: handlers calling
// cross-package (fact-imported) and local mutators, with and without
// the owed persistSession call.
package server

import "engine"

type session struct{ eng *engine.Engine }

type Server struct{ sessions map[string]*session }

func (s *Server) persistSession(sess *session) {}

// putSession stores the session in memory; the store itself must be
// written through by callers.
//
//sdlint:mutator
func (s *Server) putSession(sess *session) {}

func (s *Server) handlePersisted(sess *session) {
	sess.eng.DrillDown()
	s.persistSession(sess)
}

func (s *Server) handleDropped(sess *session) {
	sess.eng.DrillDown() // want "handleDropped mutates the session .via Engine.DrillDown. without calling persistSession"
}

func (s *Server) handleLocalDropped(sess *session) {
	s.putSession(sess) // want "handleLocalDropped mutates the session .via Server.putSession. without calling persistSession"
}

// conditional persistence still satisfies the presence check: the
// handler persists on the mutated path.
func (s *Server) handleConditional(sess *session) {
	if sess.eng.RefineNode() {
		s.persistSession(sess)
	}
}

func (s *Server) readOnly(sess *session) int {
	return sess.eng.Stats()
}

// warm drives a throwaway engine that never backs a stored session.
//
//sdlint:allow persistguard throwaway warming engine, never stored in a session
func (s *Server) warm(e *engine.Engine) {
	e.DrillDown()
}

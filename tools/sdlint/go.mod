module smartdrill/tools/sdlint

go 1.24

// Package lintutil carries the small AST/type helpers shared by the
// sdlint analyzers: callee resolution, receiver naming, path-scoped
// package matching, and test-file detection.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// IsTestFile reports whether the file is a _test.go file — sdlint's
// invariants govern production paths; tests are free to range over maps,
// read clocks, and poke unexported state.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// Callee resolves the *types.Func a call invokes (methods included), or
// nil for calls through function values, conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// RecvTypeName returns the name of fn's receiver's named type ("" for
// plain functions), looking through pointers.
func RecvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return NamedName(sig.Recv().Type())
}

// NamedName returns the name of t's named type, dereferencing one
// pointer level, or "" when t is unnamed.
func NamedName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// PkgName returns the name of fn's defining package ("" for builtins).
func PkgName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}

// PathIn reports whether pkgpath lies in one of the given package-path
// fragments: the fragment must appear on path-element boundaries, so
// "internal/brs" matches both "smartdrill/internal/brs" and the
// analysistest path "internal/brs", while "api" matches "smartdrill/api"
// but not "smartdrill/capi".
func PathIn(pkgpath string, frags ...string) bool {
	padded := "/" + pkgpath + "/"
	for _, f := range frags {
		if strings.Contains(padded, "/"+f+"/") {
			return true
		}
	}
	return false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// IsHTTPRequest reports whether t is *net/http.Request.
func IsHTTPRequest(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

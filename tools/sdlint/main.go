// Command sdlint is smartdrill's repo-specific static-analysis suite: a
// go/analysis-style multichecker that machine-checks the engine's
// cross-cutting invariants — I/O accounting, lock discipline, context
// threading, determinism of result-producing paths, and API error-code
// coverage. See docs/INVARIANTS.md at the repository root for the
// catalogue and the annotation syntax.
//
// Run it through the go command, which supplies type information per
// package (or just use `make lint` at the repository root):
//
//	go build -o tools/sdlint/bin/sdlint ./tools/sdlint
//	go vet -vettool=$PWD/tools/sdlint/bin/sdlint ./...
//
// Individual analyzers can be selected like standard vet checks:
//
//	go vet -vettool=... -ioaccount ./internal/...
package main

import (
	"smartdrill/tools/sdlint/analysis/unitchecker"
	"smartdrill/tools/sdlint/analyzers/apicodes"
	"smartdrill/tools/sdlint/analyzers/cachekey"
	"smartdrill/tools/sdlint/analyzers/ctxflow"
	"smartdrill/tools/sdlint/analyzers/detwalk"
	"smartdrill/tools/sdlint/analyzers/goflow"
	"smartdrill/tools/sdlint/analyzers/ioaccount"
	"smartdrill/tools/sdlint/analyzers/lockguard"
	"smartdrill/tools/sdlint/analyzers/persistguard"
)

func main() {
	unitchecker.Main(
		ioaccount.Analyzer,
		lockguard.Analyzer,
		ctxflow.Analyzer,
		detwalk.Analyzer,
		apicodes.Analyzer,
		cachekey.Analyzer,
		persistguard.Analyzer,
		goflow.Analyzer,
	)
}

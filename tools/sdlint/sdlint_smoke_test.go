package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSdlint compiles the vettool once per test run.
func buildSdlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sdlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sdlint: %v\n%s", err, out)
	}
	return bin
}

// TestLintCleanOnTree is the `make lint` gate in miniature: the full
// analyzer suite must pass over the real repository, meaning every true
// violation has been fixed or carries a reasoned annotation.
func TestLintCleanOnTree(t *testing.T) {
	bin := buildSdlint(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("sdlint reports violations on the tree:\n%s", out)
	}
}

// TestLintCatchesViolations plants the acceptance scenarios — a counting
// pass whose Stats increment was removed, a guarded field accessed
// without its lock, a Request field missing from the cache key, a
// session mutation that skips persistSession, and an untracked goroutine
// — in a scratch module and checks that the suite fails on every one.
func TestLintCatchesViolations(t *testing.T) {
	bin := buildSdlint(t)
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.24\n")
	// ioaccount: parallelRows drives a counting pass, but the
	// RowsScanned increment has been "deleted".
	write("internal/brs/bad.go", `package brs

type Stats struct{ RowsScanned int64 }

type runner struct{ stats Stats }

func (rn *runner) parallelRows(n int, fn func(lo, hi, g int)) { fn(0, n, 0) }

func (rn *runner) countPass(rows []int) {
	rn.parallelRows(len(rows), func(lo, hi, g int) {})
}
`)
	// lockguard: a guardedby field read without taking the mutex.
	write("internal/server/bad.go", `package server

import "sync"

type session struct {
	mu  sync.Mutex
	eng int // guardedby: mu
}

func peek(s *session) int { return s.eng }
`)
	// cachekey: a Request field neither consumed by keyOf nor annotated
	// //sdlint:nonidentity.
	write("internal/search/bad.go", `package search

type key struct{ kind int }

type Service struct{}

type Request struct {
	Kind    int
	Planted int
}

func (s *Service) keyOf(req Request) key { return key{kind: req.Kind} }
`)
	// persistguard: a declared mutator called without the owed
	// persistSession write-through.
	write("internal/server/badpersist.go", `package server

type engine struct{ n int }

//sdlint:mutator
func (e *engine) drill() { e.n++ }

func handleDrill(e *engine) { e.drill() }
`)
	// goflow: a goroutine with no WaitGroup tie and no detached reason.
	write("internal/server/badspawn.go", `package server

func spawn(c chan int) {
	go func() { c <- 1 }()
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("sdlint passed a tree with planted violations:\n%s", out)
	}
	for _, wantFrag := range []string{
		"[ioaccount]", "Stats.RowsScanned",
		"[lockguard]", "session.eng",
		"[cachekey]", "Request.Planted",
		"[persistguard]", "handleDrill",
		"[goflow]", "untracked goroutine",
	} {
		if !strings.Contains(string(out), wantFrag) {
			t.Errorf("vet output missing %q:\n%s", wantFrag, out)
		}
	}
}

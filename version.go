package smartdrill

// Version identifies this build of the smartdrill module. Binaries surface
// it (smartdrilld -version, GET /v1/health); release tooling may override
// it at link time with -ldflags "-X smartdrill.Version=...".
var Version = "1.0.0-dev"
